package main

import (
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: turbosyn
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkWarmProbes_bbara 	       1	 385343297 ns/op	      1840 iters	         3.000 warmstarts	251278808 B/op	  929836 allocs/op
BenchmarkScale1k/j1       	       2	54453132746 ns/op	      1036 gates	         4.000 phi	49631384784 B/op	449284798 allocs/op
--- BENCH: BenchmarkScale1k
    some test chatter
PASS
ok  	turbosyn	10.093s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] == "" {
		t.Fatalf("context = %v", doc.Context)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	warm := doc.Benchmarks[0]
	if warm.Name != "BenchmarkWarmProbes_bbara" || warm.N != 1 {
		t.Fatalf("benchmark[0] = %+v", warm)
	}
	for unit, want := range map[string]float64{
		"ns/op":      385343297,
		"iters":      1840,
		"warmstarts": 3,
		"B/op":       251278808,
		"allocs/op":  929836,
	} {
		if got := warm.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	if doc.Benchmarks[1].Name != "BenchmarkScale1k/j1" {
		t.Fatalf("benchmark[1] = %+v", doc.Benchmarks[1])
	}
	if doc.Benchmarks[1].Metrics["allocs/op"] != 449284798 {
		t.Errorf("scale allocs/op = %v", doc.Benchmarks[1].Metrics["allocs/op"])
	}
}

func bm(name string, ns, bytes float64) Benchmark {
	return Benchmark{Name: name, N: 1, Metrics: map[string]float64{"ns/op": ns, "B/op": bytes}}
}

func TestDeltaPairsAndRatios(t *testing.T) {
	oldDoc := &Doc{Benchmarks: []Benchmark{
		bm("A", 100, 1000),
		bm("Gone", 50, 10),
	}}
	newDoc := &Doc{Benchmarks: []Benchmark{
		bm("A", 150, 500),
		bm("Fresh", 70, 70),
	}}
	rows := Delta(oldDoc, newDoc)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	a := rows[0]
	if a.Name != "A" || a.TimeRatio != 1.5 || a.BytesRatio != 0.5 || a.OnlyIn != "" {
		t.Fatalf("row A = %+v", a)
	}
	if rows[1].Name != "Fresh" || rows[1].OnlyIn != "new" {
		t.Fatalf("row Fresh = %+v", rows[1])
	}
	if rows[2].Name != "Gone" || rows[2].OnlyIn != "old" {
		t.Fatalf("row Gone = %+v", rows[2])
	}
}

func TestDeltaMissingMetricIsNotGated(t *testing.T) {
	oldDoc := &Doc{Benchmarks: []Benchmark{
		{Name: "A", N: 1, Metrics: map[string]float64{"iters": 5}},
	}}
	newDoc := &Doc{Benchmarks: []Benchmark{
		{Name: "A", N: 1, Metrics: map[string]float64{"ns/op": 1e9, "iters": 9}},
	}}
	rows := Delta(oldDoc, newDoc)
	if rows[0].TimeRatio != 0 || rows[0].BytesRatio != 0 {
		t.Fatalf("missing metrics must give zero ratios, got %+v", rows[0])
	}
	var buf strings.Builder
	if n := FormatDelta(&buf, rows, Gates{MaxTime: 1.1, MaxBytes: 1.1, MaxAllocs: 1.1}, false); n != 0 {
		t.Fatalf("ungated row counted as regression:\n%s", buf.String())
	}
}

func bmAllocs(name string, allocs float64) Benchmark {
	return Benchmark{Name: name, N: 1, Metrics: map[string]float64{
		"ns/op": 100, "B/op": 100, "allocs/op": allocs,
	}}
}

func TestDeltaAllocsRatio(t *testing.T) {
	oldDoc := &Doc{Benchmarks: []Benchmark{
		bmAllocs("Grew", 100),
		bmAllocs("ZeroStillZero", 0),
		bmAllocs("ZeroNowAllocates", 0),
	}}
	newDoc := &Doc{Benchmarks: []Benchmark{
		bmAllocs("Grew", 200),
		bmAllocs("ZeroStillZero", 0),
		bmAllocs("ZeroNowAllocates", 1),
	}}
	rows := Delta(oldDoc, newDoc)
	if rows[0].AllocsRatio != 2.0 {
		t.Fatalf("Grew allocs ratio = %v, want 2", rows[0].AllocsRatio)
	}
	if rows[1].AllocsRatio != 1.0 {
		t.Fatalf("ZeroStillZero allocs ratio = %v, want 1", rows[1].AllocsRatio)
	}
	if !math.IsInf(rows[2].AllocsRatio, 1) {
		t.Fatalf("ZeroNowAllocates allocs ratio = %v, want +Inf", rows[2].AllocsRatio)
	}
	// At the default 1.5x both the doubling and the 0 -> 1 jump trip.
	var buf strings.Builder
	if n := FormatDelta(&buf, rows, Gates{MaxAllocs: 1.5}, false); n != 2 {
		t.Fatalf("allocs gate at 1.5x flagged %d rows, want 2:\n%s", n, buf.String())
	}
	// The 0 -> 1 jump must trip any positive threshold, however generous.
	if n := FormatDelta(&strings.Builder{}, rows, Gates{MaxAllocs: 1000}, false); n != 1 {
		t.Fatalf("allocs gate at 1000x flagged %d rows, want only the 0->1 jump", n)
	}
}

func bmLoad(name string, p99, retries float64) Benchmark {
	return Benchmark{Name: name, N: 1, Metrics: map[string]float64{
		"ns/op": 100, "p99-ms": p99, "retries": retries,
	}}
}

func TestDeltaP99AndRetriesRatios(t *testing.T) {
	oldDoc := &Doc{Benchmarks: []Benchmark{
		bmLoad("Load", 10, 0),
		bmLoad("Calm", 10, 4),
	}}
	newDoc := &Doc{Benchmarks: []Benchmark{
		bmLoad("Load", 80, 999),
		bmLoad("Calm", 10, 4),
	}}
	rows := Delta(oldDoc, newDoc)
	if rows[0].P99Ratio != 8.0 {
		t.Fatalf("p99 ratio = %v, want 8", rows[0].P99Ratio)
	}
	// Zero-retry baseline: the smoothed ratio (999+1)/(0+1) still trips.
	if rows[0].RetriesRatio != 1000 {
		t.Fatalf("retries ratio = %v, want 1000", rows[0].RetriesRatio)
	}
	if rows[1].P99Ratio != 1.0 || rows[1].RetriesRatio != 1.0 {
		t.Fatalf("steady row ratios = %+v, want 1.0/1.0", rows[1])
	}
	var buf strings.Builder
	if n := FormatDelta(&buf, rows, Gates{MaxP99: 5.0}, false); n != 1 {
		t.Fatalf("p99 gate flagged %d rows, want 1:\n%s", n, buf.String())
	}
	if n := FormatDelta(&strings.Builder{}, rows, Gates{MaxRetries: 10.0}, false); n != 1 {
		t.Fatalf("retries gate flagged %d rows, want 1", n)
	}
	// A benchmark without the load metrics (plain engine benchmarks) is
	// never gated on them.
	plain := Delta(
		&Doc{Benchmarks: []Benchmark{bm("A", 100, 100)}},
		&Doc{Benchmarks: []Benchmark{bm("A", 100, 100)}})
	if plain[0].P99Ratio != 0 || plain[0].RetriesRatio != 0 {
		t.Fatalf("metric-free row got load ratios: %+v", plain[0])
	}
	if n := FormatDelta(&strings.Builder{}, plain, Gates{MaxP99: 1.01, MaxRetries: 1.01}, false); n != 0 {
		t.Fatalf("load gates fired on a benchmark without load metrics")
	}
}

func TestFormatDeltaFlagsRegressions(t *testing.T) {
	rows := []DeltaRow{
		{Name: "Fast", TimeRatio: 0.8, BytesRatio: 1.0},
		{Name: "SlowTime", TimeRatio: 3.5, BytesRatio: 1.0},
		{Name: "FatBytes", TimeRatio: 1.0, BytesRatio: 2.0},
		{Name: "New", OnlyIn: "new"},
	}
	var buf strings.Builder
	n := FormatDelta(&buf, rows, Gates{MaxTime: 3.0, MaxBytes: 1.5, MaxAllocs: 1.5}, false)
	if n != 2 {
		t.Fatalf("regressions = %d, want 2:\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "SlowTime") || !strings.Contains(out, "REGRESSED") {
		t.Fatalf("output lacks regression marks:\n%s", out)
	}
	if strings.Count(out, "REGRESSED") != 2 {
		t.Fatalf("want exactly 2 REGRESSED marks:\n%s", out)
	}
	if !strings.Contains(out, "only in new") {
		t.Fatalf("new-only benchmark not reported:\n%s", out)
	}
	// Disabled gates (0) must never fire.
	if n := FormatDelta(&strings.Builder{}, rows, Gates{}, false); n != 0 {
		t.Fatalf("disabled thresholds still flagged %d rows", n)
	}
}

func TestFormatDeltaRequireOld(t *testing.T) {
	rows := []DeltaRow{
		{Name: "Shared", TimeRatio: 1.0, BytesRatio: 1.0, AllocsRatio: 1.0},
		{Name: "Fresh", OnlyIn: "new"},
		{Name: "Gone", OnlyIn: "old"},
	}
	// Default: unshared names are informational.
	var buf strings.Builder
	if n := FormatDelta(&buf, rows, Gates{MaxTime: 3.0, MaxBytes: 1.5, MaxAllocs: 1.5}, false); n != 0 {
		t.Fatalf("informational new-only row counted as regression:\n%s", buf.String())
	}
	// -require-old: a new benchmark with no baseline is fatal; a removed
	// benchmark (old-only) stays informational.
	buf.Reset()
	if n := FormatDelta(&buf, rows, Gates{MaxTime: 3.0, MaxBytes: 1.5, MaxAllocs: 1.5}, true); n != 1 {
		t.Fatalf("require-old flagged %d rows, want 1:\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "Fresh") || !strings.Contains(out, "no baseline") {
		t.Fatalf("missing-baseline row not marked:\n%s", out)
	}
	if strings.Contains(out, "Gone") && strings.Contains(strings.Split(out, "Gone")[1], "REGRESSED") {
		t.Fatalf("old-only row must stay informational:\n%s", out)
	}
}
