package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: turbosyn
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkWarmProbes_bbara 	       1	 385343297 ns/op	      1840 iters	         3.000 warmstarts	251278808 B/op	  929836 allocs/op
BenchmarkScale1k/j1       	       2	54453132746 ns/op	      1036 gates	         4.000 phi	49631384784 B/op	449284798 allocs/op
--- BENCH: BenchmarkScale1k
    some test chatter
PASS
ok  	turbosyn	10.093s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] == "" {
		t.Fatalf("context = %v", doc.Context)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	warm := doc.Benchmarks[0]
	if warm.Name != "BenchmarkWarmProbes_bbara" || warm.N != 1 {
		t.Fatalf("benchmark[0] = %+v", warm)
	}
	for unit, want := range map[string]float64{
		"ns/op":      385343297,
		"iters":      1840,
		"warmstarts": 3,
		"B/op":       251278808,
		"allocs/op":  929836,
	} {
		if got := warm.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	if doc.Benchmarks[1].Name != "BenchmarkScale1k/j1" {
		t.Fatalf("benchmark[1] = %+v", doc.Benchmarks[1])
	}
	if doc.Benchmarks[1].Metrics["allocs/op"] != 449284798 {
		t.Errorf("scale allocs/op = %v", doc.Benchmarks[1].Metrics["allocs/op"])
	}
}
