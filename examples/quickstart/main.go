// Quickstart: build a small sequential circuit through the API, synthesize
// it with TurboMap and TurboSYN, and watch resynthesis halve the clock
// period — the paper's Figure 1 phenomenon on a 6-gate loop.
//
// The circuit is a single loop of six 2-input AND gates carrying one
// register, gated by six inputs:
//
//	g1 = a AND g6@1 ; g2 = g1 AND b ; ... ; g6 = g5 AND f ; out = g6
//
// A 5-LUT cannot swallow the 7-input loop cone structurally, so TurboMap's
// best MDR ratio is 2. TurboSYN decomposes the wide AND cone across two
// loop unrollings and reaches ratio 1.
package main

import (
	"fmt"
	"log"

	"turbosyn"
)

func buildLoop() *turbosyn.Circuit {
	c := turbosyn.NewCircuit("loop6")
	and2 := turbosyn.And(2)
	var xs [6]int
	for i := range xs {
		xs[i] = c.AddPI(string(rune('a' + i)))
	}
	// First gate gets a placeholder second fanin; it becomes the loop edge.
	g1 := c.AddGate("g1", and2,
		turbosyn.Fanin{From: xs[0]}, turbosyn.Fanin{From: xs[0]})
	prev := g1
	for i := 1; i < 6; i++ {
		prev = c.AddGate(fmt.Sprintf("g%d", i+1), and2,
			turbosyn.Fanin{From: prev}, turbosyn.Fanin{From: xs[i]})
	}
	c.Nodes[g1].Fanins[1] = turbosyn.Fanin{From: prev, Weight: 1}
	c.InvalidateCaches()
	c.AddPO("out", prev, 0)
	if err := c.Check(); err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	c := buildLoop()
	fmt.Printf("circuit %s: %d gates, %d registers, gate-level clock period %d\n",
		c.Name, c.NumGates(), c.NumFFs(), turbosyn.ClockPeriod(c))
	num, den := turbosyn.MDRRatio(c)
	fmt.Printf("gate-level MDR ratio: %d/%d\n\n", num, den)

	for _, alg := range []turbosyn.Algorithm{turbosyn.TurboMap, turbosyn.TurboSYN} {
		res, err := turbosyn.Synthesize(c, turbosyn.Options{K: 5, Algorithm: alg})
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		fmt.Printf("%-9v -> clock period (with retiming+pipelining) %d, %d LUTs, latency %v\n",
			alg, res.Phi, res.LUTs, res.Latency)
		fmt.Printf("          realized network: %d LUTs, %d registers, period %d\n",
			res.Realized.NumGates(), res.Realized.NumFFs(), turbosyn.ClockPeriod(res.Realized))
	}
	fmt.Println("\nTurboSYN reaches ratio 1 by resynthesizing the loop cone;")
	fmt.Println("no structural mapping can, because the cone has 7 inputs.")
}
