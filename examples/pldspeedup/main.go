// pldspeedup demonstrates Section 4 of the paper: deciding that a target
// clock ratio is INFEASIBLE is the expensive half of the binary search,
// because without a certificate the label computation must run until the
// conservative per-SCC n^2 stopping rule. The positive loop detection (PLD)
// suite — runaway-label certificates plus predecessor-graph isolation —
// answers the same question in O(n) iterations.
//
// The demo builds rings of unit-delay gates around a single register (MDR
// ratio = ring length) and probes the infeasible target ratio 2 with PLD on
// and off, reporting label-computation iterations and wall time.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"turbosyn"
)

// ring builds n 2-input AND gates in a loop around one register, each gate
// also consuming its own primary input. The loop cone then has n+1 distinct
// inputs, so low target ratios are genuinely infeasible for structural
// mapping (LUTs cannot absorb the chain the way they would a buffer ring).
func ring(n int) *turbosyn.Circuit {
	c := turbosyn.NewCircuit(fmt.Sprintf("ring%d", n))
	and2 := turbosyn.And(2)
	pi0 := c.AddPI("x0")
	first := c.AddGate("r0", and2, turbosyn.Fanin{From: pi0}, turbosyn.Fanin{From: pi0})
	prev := first
	for i := 1; i < n; i++ {
		pi := c.AddPI(fmt.Sprintf("x%d", i))
		prev = c.AddGate(fmt.Sprintf("r%d", i), and2,
			turbosyn.Fanin{From: prev}, turbosyn.Fanin{From: pi})
	}
	c.Nodes[first].Fanins[1] = turbosyn.Fanin{From: prev, Weight: 1}
	c.InvalidateCaches()
	c.AddPO("z", prev, 0)
	if err := c.Check(); err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	k := flag.Int("k", 5, "LUT input count")
	flag.Parse()

	fmt.Println("probing the infeasible target ratio 2 on gate rings (TurboMap labels):")
	fmt.Printf("%8s  %12s %12s  %12s %12s  %8s\n",
		"ring", "iters(PLD)", "iters(n^2)", "time(PLD)", "time(n^2)", "speedup")
	for _, n := range []int{24, 48, 96} {
		c := ring(n)
		// Ratio 2 needs the whole ring inside ~2 LUT levels per register:
		// impossible for rings much longer than 2(K-1).
		target := 2

		on := turbosyn.Options{K: *k, Algorithm: turbosyn.TurboMap}
		start := time.Now()
		okOn, statsOn, err := turbosyn.Feasible(c, target, on)
		if err != nil {
			log.Fatal(err)
		}
		dOn := time.Since(start)

		off := on
		off.NoPLD = true
		start = time.Now()
		okOff, statsOff, err := turbosyn.Feasible(c, target, off)
		if err != nil {
			log.Fatal(err)
		}
		dOff := time.Since(start)

		if okOn || okOff {
			log.Fatalf("ring%d: target %d unexpectedly feasible", n, target)
		}
		speedup := float64(dOff) / float64(dOn)
		fmt.Printf("%8s  %12d %12d  %12v %12v  %7.1fx\n",
			c.Name, statsOn.Iterations, statsOff.Iterations,
			dOn.Round(time.Microsecond), dOff.Round(time.Microsecond), speedup)
	}
	fmt.Println("\nthe n^2 stopping rule grows quadratically with the loop size;")
	fmt.Println("PLD certificates keep infeasibility probes linear (10-50x at paper scale).")
}
