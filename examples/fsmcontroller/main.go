// fsmcontroller runs the full BLIF flow on a hand-written finite-state
// machine: parse, K-bound (the sample has a wide gate, exercising the
// structural decomposition front-end), synthesize with every algorithm, and
// emit the realized network as BLIF.
//
// The machine is a traffic-light-style controller: a one-hot 4-phase ring
// with a wide "all clear" condition gating the phase advance.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"turbosyn"
)

const controllerBLIF = `
.model tlc
.inputs carNS carEW ped timerA timerB force
.outputs gNS gEW walk
# one-hot phase register ring
.latch p0n p0 1
.latch p1n p1 0
.latch p2n p2 0
.latch p3n p3 0
# advance = both timers clear AND (traffic demands it OR forced)
.names carNS carEW ped timerA timerB force adv
1--00- 1
-1-00- 1
--100- 1
---001 1
.names adv nadv
0 1
# ring with hold
.names p0 nadv hold0
11 1
.names p3 adv step0
11 1
.names hold0 step0 p0n
1- 1
-1 1
.names p1 nadv hold1
11 1
.names p0 adv step1
11 1
.names hold1 step1 p1n
1- 1
-1 1
.names p2 nadv hold2
11 1
.names p1 adv step2
11 1
.names hold2 step2 p2n
1- 1
-1 1
.names p3 nadv hold3
11 1
.names p2 adv step3
11 1
.names hold3 step3 p3n
1- 1
-1 1
# outputs
.names p0 p1 gNS
1- 1
-1 1
.names p2 gEW
1 1
.names p3 ped walk
11 1
.end
`

func main() {
	k := flag.Int("k", 4, "LUT input count")
	emit := flag.Bool("blif", false, "write the realized TurboSYN network to stdout")
	flag.Parse()

	c, err := turbosyn.ReadBLIF(strings.NewReader(controllerBLIF))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %s: %d gates (max fanin %d), %d registers, %d/%d I/O\n",
		c.Name, c.NumGates(), c.MaxFanin(), c.NumFFs(), len(c.PIs), len(c.POs))
	if !c.IsKBounded(*k) {
		b, err := turbosyn.KBound(c, *k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("K-bounded to %d-input gates: %d gates\n", *k, b.NumGates())
	}
	fmt.Println()

	var out *turbosyn.Circuit
	for _, alg := range []turbosyn.Algorithm{turbosyn.FlowSYNS, turbosyn.TurboMap, turbosyn.TurboSYN} {
		res, err := turbosyn.Synthesize(c, turbosyn.Options{K: *k, Algorithm: alg})
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		fmt.Printf("%-9v  period %d   LUTs %2d   latency %v\n", alg, res.Phi, res.LUTs, res.Latency)
		if alg == turbosyn.TurboSYN {
			out = res.Realized
		}
	}
	if *emit {
		fmt.Println()
		if err := turbosyn.WriteBLIF(os.Stdout, out); err != nil {
			log.Fatal(err)
		}
	}
}
