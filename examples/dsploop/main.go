// dsploop synthesizes a loop-dominated DSP kernel: a 16-bit ripple-carry
// accumulator whose low bit takes XOR feedback from high-order sum bits (an
// LFSR-coupled integrator, the shape of scramblers and sigma-delta loops).
//
// The feedback taps pull the entire carry chain into one strongly connected
// component, so the clock period is governed by loops that carry wide,
// rippling logic. Pipelining alone cannot help (loops!); structural mapping
// (TurboMap) chops the ripple into K-LUT slices; TurboSYN additionally
// resynthesizes the carry cones (carry-lookahead-like decompositions) and
// reaches a lower ratio — the paper's headline effect on datapaths.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"turbosyn"
)

func buildAccumulator(width int, taps []int) *turbosyn.Circuit {
	c := turbosyn.NewCircuit(fmt.Sprintf("acc%d", width))
	and2, or2, xor2 := turbosyn.And(2), turbosyn.Or(2), turbosyn.Xor(2)
	ins := make([]int, width)
	for i := range ins {
		ins[i] = c.AddPI(fmt.Sprintf("in%d", i))
	}
	// Accumulator state arrives over registered edges from the sum bits;
	// allocate buffer placeholders first and close the loops afterwards.
	acc := make([]int, width)
	for i := range acc {
		acc[i] = c.AddGate(fmt.Sprintf("acc%d", i), turbosyn.ConstFunc(false))
	}
	sum := make([]int, width)
	carry := -1
	for i := 0; i < width; i++ {
		a := turbosyn.Fanin{From: acc[i]}
		b := turbosyn.Fanin{From: ins[i]}
		x := c.AddGate(fmt.Sprintf("x%d", i), xor2, a, b)
		if carry < 0 {
			sum[i] = c.AddGate(fmt.Sprintf("s%d", i), turbosyn.Buf(), turbosyn.Fanin{From: x})
			carry = c.AddGate(fmt.Sprintf("c%d", i), and2, a, b)
			continue
		}
		sum[i] = c.AddGate(fmt.Sprintf("s%d", i), xor2,
			turbosyn.Fanin{From: x}, turbosyn.Fanin{From: carry})
		g := c.AddGate(fmt.Sprintf("g%d", i), and2, a, b)
		h := c.AddGate(fmt.Sprintf("h%d", i), and2,
			turbosyn.Fanin{From: x}, turbosyn.Fanin{From: carry})
		carry = c.AddGate(fmt.Sprintf("c%d", i), or2,
			turbosyn.Fanin{From: g}, turbosyn.Fanin{From: h})
	}
	fb := sum[0]
	for _, t := range taps {
		fb = c.AddGate(fmt.Sprintf("fb%d", t), xor2,
			turbosyn.Fanin{From: fb}, turbosyn.Fanin{From: sum[t]})
	}
	for i, id := range acc {
		src := sum[i]
		if i == 0 {
			src = fb
		}
		g := c.Nodes[id]
		g.Func = turbosyn.Buf()
		g.Fanins = []turbosyn.Fanin{{From: src, Weight: 1}}
	}
	c.InvalidateCaches()
	c.AddPO("low", sum[0], 0)
	c.AddPO("high", sum[width-1], 0)
	if err := c.Check(); err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	width := flag.Int("width", 16, "accumulator width in bits")
	k := flag.Int("k", 5, "LUT input count")
	emit := flag.Bool("blif", false, "write the TurboSYN-realized network as BLIF to stdout")
	flag.Parse()

	c := buildAccumulator(*width, []int{*width / 3, 2 * *width / 3})
	num, den := turbosyn.MDRRatio(c)
	fmt.Printf("%s: %d gates, %d registers, gate-level period %d, gate-level MDR %d/%d\n\n",
		c.Name, c.NumGates(), c.NumFFs(), turbosyn.ClockPeriod(c), num, den)

	var blifTarget *turbosyn.Circuit
	for _, alg := range []turbosyn.Algorithm{turbosyn.FlowSYNS, turbosyn.TurboMap, turbosyn.TurboSYN} {
		start := time.Now()
		res, err := turbosyn.Synthesize(c, turbosyn.Options{K: *k, Algorithm: alg})
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		fmt.Printf("%-9v  period %2d   LUTs %3d   registers %3d   cpu %v\n",
			alg, res.Phi, res.LUTs, res.Realized.NumFFs(),
			time.Since(start).Round(time.Millisecond))
		if alg == turbosyn.TurboSYN {
			blifTarget = res.Realized
		}
	}
	if *emit && blifTarget != nil {
		fmt.Println()
		if err := turbosyn.WriteBLIF(os.Stdout, blifTarget); err != nil {
			log.Fatal(err)
		}
	}
}
