package turbosyn

import (
	"bytes"
	"testing"

	"turbosyn/internal/bench"
)

// TestWorklistSuiteBitIdentical runs the quick suite slice (the same four
// circuits as the cache-warm gate: FSM SOPs plus a datapath carry chain)
// through Synthesize with the dirty-set worklist on (default) and off
// (Options.NoWorklist) and requires byte-identical BLIF, phi and LUT counts
// per circuit — the end-to-end face of the invariant
// TestWorklistMatchesFullSweep pins inside internal/core: the worklist skips
// only visits that full sweeps would have elided as decision-cache no-ops.
// The worklist run must also report the work avoidance it claims.
func TestWorklistSuiteBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full syntheses per circuit; run via make test-full")
	}
	quick := map[string]bool{"bbara": true, "bbsse": true, "cse": true, "s420": true}
	for _, cs := range bench.Suite() {
		if !quick[cs.Name] {
			continue
		}
		t.Run(cs.Name, func(t *testing.T) {
			run := func(noWorklist bool) ([]byte, *Result) {
				res, err := Synthesize(cs.Circuit, Options{K: 5, NoWorklist: noWorklist})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := WriteBLIF(&buf, res.Realized); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes(), res
			}
			onBLIF, on := run(false)
			offBLIF, off := run(true)
			if on.Phi != off.Phi || on.LUTs != off.LUTs {
				t.Fatalf("worklist changed the result: phi %d/%d, LUTs %d/%d",
					on.Phi, off.Phi, on.LUTs, off.LUTs)
			}
			if !bytes.Equal(onBLIF, offBLIF) {
				t.Error("worklist run's realized BLIF differs from full sweeps")
			}
			if on.Stats.DirtySkips == 0 {
				t.Error("worklist run elided no visits")
			}
			if off.Stats.DirtySkips != 0 {
				t.Errorf("full-sweep run reported %d dirty skips", off.Stats.DirtySkips)
			}
		})
	}
}
